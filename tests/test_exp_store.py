"""Tests for the JSONL-backed result store."""

import json
import multiprocessing

import pytest

from repro.errors import ConfigurationError
from repro.exp import (
    ResultStore,
    audit_store,
    compact_store,
    result_from_dict,
    result_to_dict,
    result_to_json,
)
from repro.sim.results import SimulationResult


@pytest.fixture(autouse=True)
def _pin_jsonl_backend(monkeypatch):
    """This module tests the JSONL backend's on-disk format (line
    layout, sidecars, torn tails), so the CI sqlite matrix leg must not
    redirect its directory-path stores. Cross-backend behavior lives in
    test_store_backends.py."""
    monkeypatch.setenv("REPRO_STORE_BACKEND", "jsonl")


def make_result(variant="base", cycles=1000):
    return SimulationResult(
        variant=variant,
        workload="tpcc-1",
        cycles=cycles,
        instructions=5000,
        i_accesses=400,
        i_misses=40,
        d_accesses=200,
        d_misses=10,
        migrations=3,
        utilization=0.625,
        miss_class_mpki={"instruction": {"cold": 1.5}},
    )


class TestSerialisation:
    def test_dict_roundtrip_is_lossless(self):
        result = make_result()
        assert result_from_dict(result_to_dict(result)) == result

    def test_json_is_canonical(self):
        a = make_result()
        b = make_result()
        assert result_to_json(a) == result_to_json(b)
        assert json.loads(result_to_json(a))["cycles"] == 1000


class TestMemoryStore:
    def test_put_get(self):
        store = ResultStore()
        result = make_result()
        assert store.get("k1") is None
        store.put("k1", result)
        assert store.get("k1") == result
        assert "k1" in store and len(store) == 1

    def test_overwrite_wins(self):
        store = ResultStore()
        store.put("k", make_result(cycles=1))
        store.put("k", make_result(cycles=2))
        assert store.get("k").cycles == 2


class TestPersistentStore:
    def test_roundtrip_through_disk(self, tmp_path):
        store = ResultStore(tmp_path)
        result = make_result(variant="slicc-sw")
        store.put("deadbeef", result, spec={"workload": "tpcc-1"})

        reloaded = ResultStore(tmp_path)
        assert reloaded.get("deadbeef") == result
        assert reloaded.spec_info("deadbeef") == {"workload": "tpcc-1"}
        assert (tmp_path / "results.jsonl").exists()

    def test_near_miss_file_path_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultStore(tmp_path / "results.json")

    def test_existing_dotted_directory_accepted(self, tmp_path):
        dotted = tmp_path / "campaign.2026-07"
        dotted.mkdir()
        store = ResultStore(dotted)
        store.put("k", make_result())
        assert (dotted / "results.jsonl").exists()

    def test_explicit_jsonl_path(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        store = ResultStore(path)
        store.put("k", make_result())
        assert path.exists()
        assert ResultStore(path).get("k") == make_result()

    def test_append_only_last_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", make_result(cycles=1))
        store.put("k", make_result(cycles=2))
        lines = (tmp_path / "results.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert ResultStore(tmp_path).get("k").cycles == 2

    def test_truncated_trailing_line_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("good", make_result())
        with (tmp_path / "results.jsonl").open("a") as fh:
            fh.write('{"key": "bad", "result": {"var')  # simulated crash
        with pytest.warns(UserWarning):
            reloaded = ResultStore(tmp_path)
        assert reloaded.get("good") is not None
        assert len(reloaded) == 1

    def test_incompatible_rows_skipped_not_fatal(self, tmp_path):
        """Rows from an older result schema (or hand-edited junk) must
        not brick the store — they are re-derivable by rerunning."""
        store = ResultStore(tmp_path)
        store.put("good", make_result())
        with (tmp_path / "results.jsonl").open("a") as fh:
            fh.write("null\n")  # not an object
            fh.write('{"result": {"variant": "base"}}\n')  # no key
            fh.write('{"key": "old", "result": {"no_such_field": 1}}\n')
        with pytest.warns(UserWarning):
            reloaded = ResultStore(tmp_path)
        assert reloaded.get("good") == make_result()
        assert len(reloaded) == 1


class TestLoadReport:
    def test_counts_blank_and_torn_lines(self, tmp_path):
        """Regression: blank lines and a torn final line are skipped AND
        counted, not silently swallowed."""
        store = ResultStore(tmp_path)
        store.put("a", make_result(cycles=1))
        store.put("a", make_result(cycles=2))  # supersedes
        store.put("b", make_result(cycles=3))
        with (tmp_path / "results.jsonl").open("a") as fh:
            fh.write("\n\n")  # editor artefacts
            fh.write('{"key": "c", "result": {"cyc')  # crash mid-append
        with pytest.warns(UserWarning, match="quarantined"):
            reloaded = ResultStore(tmp_path)
        report = reloaded.load_report
        assert report.lines == 6
        assert report.blank == 2
        assert report.corrupt == 1
        assert report.rows == 3
        assert report.superseded == 1
        assert len(reloaded) == 2

    def test_clean_store_reports_clean(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("a", make_result())
        report = ResultStore(tmp_path).load_report
        assert report.corrupt == 0 and report.blank == 0
        assert report.rows == 1 and report.superseded == 0


class TestQuarantine:
    def test_corrupt_lines_copied_to_sidecar(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("good", make_result())
        junk = '{"key": "bad", "result": {"torn'
        with (tmp_path / "results.jsonl").open("a") as fh:
            fh.write(junk)
        with pytest.warns(UserWarning, match="store compact"):
            reloaded = ResultStore(tmp_path)
        sidecar = reloaded.quarantine_path
        assert sidecar.exists()
        assert sidecar.read_text().splitlines() == [junk]
        # The main file is untouched by load (read-only diagnosis).
        assert junk in (tmp_path / "results.jsonl").read_text()

    def test_sidecar_deduplicates_across_loads(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("good", make_result())
        junk = '{"key": "bad", "result": {"torn'
        with (tmp_path / "results.jsonl").open("a") as fh:
            fh.write(junk)
        for _ in range(3):
            with pytest.warns(UserWarning):
                ResultStore(tmp_path)
        sidecar = tmp_path / "results.jsonl.quarantine"
        assert sidecar.read_text().splitlines() == [junk]


class TestHealingAppend:
    def test_append_after_torn_tail_isolates_fragment(self, tmp_path):
        """Regression for the crash-mid-append scenario: the next append
        writes a newline first, so the fragment cannot swallow the new
        row."""
        store = ResultStore(tmp_path)
        store.put("good", make_result(cycles=1))
        with (tmp_path / "results.jsonl").open("a") as fh:
            fh.write('{"key": "torn", "result": {"cy')  # no newline
        # Appending through a *fresh* store handle (as a resumed run
        # would) lands the new row on its own line.
        with pytest.warns(UserWarning):
            resumed = ResultStore(tmp_path)
        resumed.put("next", make_result(cycles=2))
        with pytest.warns(UserWarning):
            final = ResultStore(tmp_path)
        assert final.get("good").cycles == 1
        assert final.get("next").cycles == 2
        assert final.load_report.corrupt == 1


class TestFailureRows:
    def test_failure_recorded_but_never_served(self, tmp_path):
        store = ResultStore(tmp_path)
        failure = {"kind": "timeout", "error": "killed", "attempts": 1}
        store.put_failure("k", failure, spec={"workload": "tpcc-1"})
        assert store.get("k") is None  # not a cache hit
        assert store.failure_info("k") == failure
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("k") is None
        assert reloaded.failure_info("k") == failure
        assert reloaded.failures() == {"k": failure}
        assert reloaded.load_report.failures == 1

    def test_later_result_supersedes_failure(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_failure("k", {"kind": "error", "error": "boom"})
        store.put("k", make_result())
        assert store.failure_info("k") is None
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("k") == make_result()
        assert reloaded.failure_info("k") is None
        assert reloaded.load_report.failures == 0


class TestAuditAndCompact:
    def populate(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("a", make_result(cycles=1))
        store.put("a", make_result(cycles=2))
        store.put("b", make_result(cycles=3))
        store.put_failure("c", {"kind": "error", "error": "boom"})
        with (tmp_path / "results.jsonl").open("a") as fh:
            fh.write("\n")
            fh.write("{torn")
        return tmp_path / "results.jsonl"

    def test_audit_reports_without_writing(self, tmp_path):
        path = self.populate(tmp_path)
        before = path.read_bytes()
        audit = audit_store(tmp_path)
        assert path.read_bytes() == before
        assert not (tmp_path / "results.jsonl.quarantine").exists()
        assert audit.lines == 6
        assert audit.blank == 1 and audit.corrupt == 1
        assert audit.result_rows == 3 and audit.failure_rows == 1
        assert audit.keys == 2 and audit.live_failures == 1
        assert audit.superseded == 1
        assert audit.reclaimable == 3
        assert not audit.clean

    def test_audit_of_missing_store_is_empty(self, tmp_path):
        audit = audit_store(tmp_path)
        assert audit.lines == 0 and audit.clean

    def test_compact_keeps_only_live_rows(self, tmp_path):
        path = self.populate(tmp_path)
        with pytest.warns(UserWarning):
            before, written = compact_store(tmp_path)
        assert before.reclaimable == 3
        assert written == 3  # a=2, b, and the live failure for c
        audit = audit_store(tmp_path)
        assert audit.clean and audit.reclaimable == 0
        assert audit.keys == 2 and audit.live_failures == 1
        # Evidence preserved: the corrupt line moved to the sidecar.
        assert (tmp_path / "results.jsonl.quarantine").exists()
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("a").cycles == 2
        assert reloaded.get("b").cycles == 3
        assert reloaded.failure_info("c")["kind"] == "error"
        assert path.read_text().endswith("\n")


def _hammer_store(path, writer, n_rows):
    store = ResultStore(path)
    for i in range(n_rows):
        store.put(f"w{writer}-r{i}", make_result(cycles=writer * 1000 + i))


class TestConcurrentWriters:
    def test_parallel_appends_never_interleave(self, tmp_path):
        """Four processes hammering one store file: every line must
        still be a complete, parseable row (the flock + single-write
        append contract)."""
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_hammer_store, args=(tmp_path, w, 25))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
            assert p.exitcode == 0
        lines = (tmp_path / "results.jsonl").read_text().splitlines()
        assert len(lines) == 100
        for line in lines:
            json.loads(line)
        store = ResultStore(tmp_path)
        assert len(store) == 100
        assert store.load_report.corrupt == 0
        assert store.get("w3-r24").cycles == 3024
