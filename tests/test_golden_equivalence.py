"""Golden-equivalence guard for the optimized replay hot path.

The fixtures in ``tests/golden/`` are the canonical-JSON
``SimulationResult`` of every engine variant on two smoke workloads,
recorded with ``scripts/dump_golden.py`` on the *pre-optimization* (PR 1)
engine. Pinning today's engine byte-identical to them proves the hot-path
rewrite — allocation-free cache accesses, the age-counter LRU backend,
the transposed bloom presence probe, and the inlined L1/TLB hit fast
path — changes no simulated number anywhere, extending the jobs=1-vs-4
determinism guard across implementations rather than job counts.

If a future PR intentionally changes simulated numbers, regenerate the
fixtures with ``python scripts/dump_golden.py`` and say so in the PR.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.exp.store import result_to_json
from repro.params import ScalePreset
from repro.sim.engine import VARIANTS, SimConfig, simulate
from repro.workloads import standard_trace

GOLDEN_DIR = Path(__file__).parent / "golden"

# The golden grid — workloads, seed, and the prefetcher/classifier/NUCA/
# data-prefetch config pins — is defined once in scripts/dump_golden.py
# (the tool that records the fixtures); import it so the pinned set and
# the regeneration script cannot drift apart.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
from dump_golden import (  # noqa: E402
    GOLDEN_CONFIGS,
    GOLDEN_POLICIES,
    GOLDEN_POLICY_WORKLOADS,
    GOLDEN_SEED,
    GOLDEN_VARIANT_WORKLOADS,
    GOLDEN_WORKLOADS,
)


@pytest.fixture(scope="module")
def golden_traces():
    return {
        workload: standard_trace(workload, ScalePreset.SMOKE, seed=GOLDEN_SEED)
        for workload in GOLDEN_WORKLOADS + GOLDEN_VARIANT_WORKLOADS
    }


def test_every_variant_has_a_fixture():
    expected = {
        f"{workload}__{variant}.json"
        for workload in GOLDEN_WORKLOADS + GOLDEN_VARIANT_WORKLOADS
        for variant in VARIANTS
    } | {
        f"{workload}__cfg-{name}.json"
        for workload in GOLDEN_WORKLOADS
        for name, _ in GOLDEN_CONFIGS
    } | {
        f"{workload}__{policy}.json"
        for workload in GOLDEN_POLICY_WORKLOADS
        for policy in GOLDEN_POLICIES
    }
    present = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert expected <= present, f"missing fixtures: {expected - present}"


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize(
    "workload", GOLDEN_WORKLOADS + GOLDEN_VARIANT_WORKLOADS
)
def test_byte_identical_to_seed_engine(golden_traces, workload, variant):
    golden = (GOLDEN_DIR / f"{workload}__{variant}.json").read_text().strip()
    result = simulate(golden_traces[workload], variant=variant)
    assert result_to_json(result) == golden


@pytest.mark.parametrize(
    "name,kwargs", GOLDEN_CONFIGS, ids=[name for name, _ in GOLDEN_CONFIGS]
)
@pytest.mark.parametrize("workload", GOLDEN_WORKLOADS)
def test_config_pins_byte_identical(golden_traces, workload, name, kwargs):
    """Prefetcher/classifier/NUCA configurations are pinned too, so the
    PR 3 inline fast paths cannot drift from the reference semantics."""
    golden = (GOLDEN_DIR / f"{workload}__cfg-{name}.json").read_text().strip()
    result = simulate(golden_traces[workload], config=SimConfig(**kwargs))
    assert result_to_json(result) == golden


@pytest.mark.parametrize("policy", GOLDEN_POLICIES)
@pytest.mark.parametrize("workload", GOLDEN_POLICY_WORKLOADS)
def test_extension_policies_byte_identical(golden_traces, workload, policy):
    """The extension scheduling policies (PR 5) are pinned like the
    paper's variants: their quantum-boundary decision semantics — and
    random-migrate's fixed-seed RNG — must stay deterministic."""
    golden = (GOLDEN_DIR / f"{workload}__{policy}.json").read_text().strip()
    result = simulate(golden_traces[workload], variant=policy)
    assert result_to_json(result) == golden
