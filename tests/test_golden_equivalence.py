"""Golden-equivalence guard for the optimized replay hot path.

The fixtures in ``tests/golden/`` are the canonical-JSON
``SimulationResult`` of every engine variant on two smoke workloads,
recorded with ``scripts/dump_golden.py`` on the *pre-optimization* (PR 1)
engine. Pinning today's engine byte-identical to them proves the hot-path
rewrite — allocation-free cache accesses, the age-counter LRU backend,
the transposed bloom presence probe, and the inlined L1/TLB hit fast
path — changes no simulated number anywhere, extending the jobs=1-vs-4
determinism guard across implementations rather than job counts.

If a future PR intentionally changes simulated numbers, regenerate the
fixtures with ``python scripts/dump_golden.py`` and say so in the PR.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.exp.store import result_to_json
from repro.params import ScalePreset
from repro.sim.engine import VARIANTS, simulate
from repro.workloads import standard_trace

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Must match scripts/dump_golden.py.
GOLDEN_WORKLOADS = ("tpcc-1", "tpce")
GOLDEN_SEED = 7


@pytest.fixture(scope="module")
def golden_traces():
    return {
        workload: standard_trace(workload, ScalePreset.SMOKE, seed=GOLDEN_SEED)
        for workload in GOLDEN_WORKLOADS
    }


def test_every_variant_has_a_fixture():
    expected = {
        f"{workload}__{variant}.json"
        for workload in GOLDEN_WORKLOADS
        for variant in VARIANTS
    }
    present = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert expected <= present, f"missing fixtures: {expected - present}"


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("workload", GOLDEN_WORKLOADS)
def test_byte_identical_to_seed_engine(golden_traces, workload, variant):
    golden = (GOLDEN_DIR / f"{workload}__{variant}.json").read_text().strip()
    result = simulate(golden_traces[workload], variant=variant)
    assert result_to_json(result) == golden
