"""Unit tests for the PR 2/PR 3 hot-path mechanisms.

The golden-equivalence suite proves the full engine is unchanged
end-to-end; these tests pin the individual mechanisms — the
allocation-free cache access, the age-counter LRU backend, the
transposed bloom store, and (PR 3) the inline fast paths for the
next-line prefetcher, the miss classifiers, the banked NUCA L2 and the
migration data prefetcher — against small hand-checkable scenarios and
the reference implementations they replace.
"""

from __future__ import annotations

import random

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.policies.base import make_policy
from repro.core.signature import BloomSignature, SignatureSet
from repro.exp.store import result_to_json
from repro.params import CacheParams, ScalePreset, SliccParams, SystemParams
from repro.sim.engine import ReplayEngine, SimConfig
from repro.sim.machine import Machine
from repro.workloads import standard_trace


@pytest.fixture
def tiny_params():
    return CacheParams(size_bytes=4 * 1024, assoc=4, policy="lru")


class TestAccessFast:
    def test_hit_and_miss_returns(self, tiny_params):
        cache = SetAssociativeCache(tiny_params)
        assert cache.access_fast(5) is False
        assert cache.access_fast(5) is True

    def test_last_victim_matches_access_wrapper(self, tiny_params):
        fast = SetAssociativeCache(tiny_params)
        slow = SetAssociativeCache(tiny_params)
        n_sets = tiny_params.n_sets
        # Fill one set past capacity so evictions happen.
        blocks = [i * n_sets for i in range(6)]
        for block in blocks:
            hit_fast = fast.access_fast(block)
            result = slow.access(block)
            assert hit_fast == result.hit
            if not result.hit:
                assert fast.last_victim == result.victim

    def test_bypass_sets_no_victim(self, tiny_params):
        cache = SetAssociativeCache(tiny_params)
        n_sets = tiny_params.n_sets
        for i in range(4):
            cache.access_fast(i * n_sets)
        assert cache.access_fast(4 * n_sets, fill=False) is False
        assert cache.last_victim is None
        # The set was not disturbed.
        assert all(cache.probe(i * n_sets) for i in range(4))


class _ListLru:
    """Reference list-based LRU family (the pre-PR implementation)."""

    def __init__(self, n_sets, assoc, insert_at):
        self._order = [[] for _ in range(n_sets)]
        self._insert_at = insert_at  # "mru" or "lru"
        self._fills = 0

    def on_hit(self, s, w):
        self._order[s].remove(w)
        self._order[s].append(w)

    def on_fill(self, s, w):
        order = self._order[s]
        if w in order:
            order.remove(w)
        if self._insert_at == "mru":
            order.append(w)
        else:
            order.insert(0, w)

    def choose_victim(self, s):
        return self._order[s][0]


@pytest.mark.parametrize("policy_name,insert_at", [("lru", "mru"), ("lip", "lru")])
def test_age_counters_match_list_reference(policy_name, insert_at):
    """Random hit/fill/victim interleavings agree with the list form."""
    n_sets, assoc = 4, 4
    rng = random.Random(13)
    aged = make_policy(policy_name, n_sets, assoc)
    ref = _ListLru(n_sets, assoc, insert_at)
    resident: dict[int, set[int]] = {s: set() for s in range(n_sets)}
    for _ in range(2000):
        s = rng.randrange(n_sets)
        if len(resident[s]) < assoc:
            w = min(set(range(assoc)) - resident[s])
            resident[s].add(w)
            aged.on_fill(s, w)
            ref.on_fill(s, w)
        elif rng.random() < 0.5:
            w = rng.choice(sorted(resident[s]))
            aged.on_hit(s, w)
            ref.on_hit(s, w)
        else:
            assert aged.choose_victim(s) == ref.choose_victim(s)
            w = ref.choose_victim(s)
            # Refill the victim way, as the cache would.
            aged.on_fill(s, w)
            ref.on_fill(s, w)


def test_recency_order_reports_lru_first():
    policy = make_policy("lru", 1, 4)
    for way in (2, 0, 3, 1):
        policy.on_fill(0, way)
    policy.on_hit(0, 2)
    assert policy.recency_order(0) == [0, 3, 1, 2]
    assert policy.choose_victim(0) == 0


class TestTransposedSignatures:
    def test_shared_store_keeps_per_core_bits_separate(self, tiny_params):
        shared = SignatureSet(64)
        c0 = SetAssociativeCache(tiny_params)
        c1 = SetAssociativeCache(tiny_params)
        s0 = BloomSignature(64, c0, shared=shared, core=0)
        s1 = BloomSignature(64, c1, shared=shared, core=1)
        s0.insert(5)
        assert s0.probe(5) and not s1.probe(5)
        s1.insert(5)
        assert shared.masks[5] == 0b11
        s0.on_evict(5)  # block 5 not resident in c0 -> bit clears
        assert not s0.probe(5) and s1.probe(5)

    def test_standalone_signature_still_works(self, tiny_params):
        cache = SetAssociativeCache(tiny_params)
        sig = BloomSignature(64, cache)
        sig.insert(7)
        assert sig.probe(7)
        assert sig.popcount() == 1
        sig.rebuild()
        assert sig.popcount() == 0

    def test_presence_mask_matches_per_core_probes(self):
        system = SystemParams()
        machine = Machine(system, slicc=SliccParams(), with_signatures=True)
        block = 42
        for core in (1, 3, 6):
            machine.signature_insert(core, block)
        cores = list(range(system.n_cores))
        cores_mask = sum(1 << c for c in cores)
        expected = 0
        for core in cores:
            if core != 1 and machine.signatures[core].probe(block):
                expected |= 1 << core
        assert machine.presence_mask(block, 1, cores_mask) == expected
        assert machine.presence_mask(block, 1, cores_mask) == (1 << 3) | (1 << 6)

    def test_mismatched_shared_bits_rejected(self, tiny_params):
        from repro.errors import ConfigurationError

        cache = SetAssociativeCache(tiny_params)
        with pytest.raises(ConfigurationError):
            BloomSignature(128, cache, shared=SignatureSet(64))


# ----------------------------------------------------------------------
# PR 3: inline fast paths vs the generic reference implementation
# ----------------------------------------------------------------------

#: One configuration per inline branch of the quantum loop, plus the
#: combinations: next-line prefetcher (consume/issue/evict), I+D miss
#: classifiers (shadow LRU + three-C counts), banked NUCA (both record
#: kinds), the migration data prefetcher (history/pending), and each of
#: them stacked on the SLICC/STEPS tracker paths.
FAST_PATH_CONFIGS = (
    ("nextline", {}),
    ("base-classify", {"variant": "base", "collect_miss_classes": True}),
    ("pif-classify", {"variant": "pif", "collect_miss_classes": True}),
    ("slicc-classify", {"variant": "slicc", "collect_miss_classes": True}),
    ("base-nuca", {"variant": "base", "model_l2_capacity": True}),
    ("nextline-nuca", {"variant": "nextline", "model_l2_capacity": True}),
    ("slicc-dp", {"variant": "slicc", "data_prefetch_n": 4}),
    (
        "slicc-everything",
        {
            "variant": "slicc",
            "model_l2_capacity": True,
            "data_prefetch_n": 4,
            "collect_miss_classes": True,
        },
    ),
    (
        "steps-nuca-classify",
        {
            "variant": "steps",
            "model_l2_capacity": True,
            "collect_miss_classes": True,
        },
    ),
    (
        "slicc-sw-nuca-classify",
        {
            "variant": "slicc-sw",
            "model_l2_capacity": True,
            "collect_miss_classes": True,
        },
    ),
)


@pytest.fixture(scope="module")
def matrix_trace():
    return standard_trace("tpcc-1", ScalePreset.SMOKE, seed=3)


def _run(trace, kwargs, fast: bool):
    config = (
        SimConfig(**kwargs) if "variant" in kwargs
        else SimConfig(variant="nextline", **kwargs)
    )
    engine = ReplayEngine(trace, config)
    if not fast:
        # Force every record through the generic reference path
        # (_process_instruction/_process_data). These flags exist for
        # exactly this test: proving the inline loop bit-identical.
        engine._fast_i = False
        engine._fast_d = False
    return result_to_json(engine.run())


class TestFastVsFallbackMatrix:
    @pytest.mark.parametrize(
        "name,kwargs",
        FAST_PATH_CONFIGS,
        ids=[name for name, _ in FAST_PATH_CONFIGS],
    )
    def test_inline_matches_reference(self, matrix_trace, name, kwargs):
        fast = _run(matrix_trace, dict(kwargs), fast=True)
        reference = _run(matrix_trace, dict(kwargs), fast=False)
        assert fast == reference

    def test_mixed_fast_instruction_reference_data(self, matrix_trace):
        """Per-kind flags are independent: inline I records + reference
        D records (and vice versa) still agree with the full inline run,
        including the shared NUCA bank statistics."""
        config = SimConfig(
            variant="slicc",
            model_l2_capacity=True,
            data_prefetch_n=4,
            collect_miss_classes=True,
        )
        full = ReplayEngine(matrix_trace, config)
        expected = result_to_json(full.run())
        for fast_i, fast_d in ((True, False), (False, True)):
            engine = ReplayEngine(matrix_trace, config)
            engine._fast_i = fast_i
            engine._fast_d = fast_d
            assert result_to_json(engine.run()) == expected, (fast_i, fast_d)


class TestFastPathCoverage:
    def test_nuca_prefetcher_combo_takes_fast_path(self, matrix_trace):
        """Regression: a NUCA+prefetcher combination must run inline —
        exactly the class of config PR 2 sent through the slow generic
        fallback."""
        engine = ReplayEngine(
            matrix_trace,
            SimConfig(variant="nextline", model_l2_capacity=True),
        )
        assert engine.prefetchers is not None
        assert engine.machine.nuca is not None
        assert engine._fast_i and engine._fast_d

    @pytest.mark.parametrize(
        "name,kwargs",
        FAST_PATH_CONFIGS,
        ids=[name for name, _ in FAST_PATH_CONFIGS],
    )
    def test_every_config_is_fast(self, matrix_trace, name, kwargs):
        kwargs = dict(kwargs)
        config = (
            SimConfig(**kwargs) if "variant" in kwargs
            else SimConfig(variant="nextline", **kwargs)
        )
        engine = ReplayEngine(matrix_trace, config)
        assert engine._fast_i and engine._fast_d

    def test_nuca_bank_stats_flushed(self, matrix_trace):
        """The batched bank counters must land in the bank CacheStats by
        the time run() returns (inline runs only batch, never lose)."""
        config = SimConfig(variant="base", model_l2_capacity=True)
        fast = ReplayEngine(matrix_trace, config)
        fast.run()
        ref = ReplayEngine(matrix_trace, config)
        ref._fast_i = ref._fast_d = False
        ref.run()
        fast_stats = fast.machine.nuca.stats()
        ref_stats = ref.machine.nuca.stats()
        assert fast_stats.accesses == ref_stats.accesses > 0
        assert fast_stats.misses == ref_stats.misses
        assert fast_stats.evictions == ref_stats.evictions


class TestReplayTables:
    def test_tables_cached_and_consistent(self, matrix_trace):
        thread = matrix_trace.threads[0]
        addr, kind, page = thread.replay_tables(12)
        assert addr == thread.addr.tolist()
        assert kind == thread.kind.tolist()
        assert page == [a >> 12 for a in addr]
        # Same object on repeat (memoised), rebuilt for another shift.
        assert thread.replay_tables(12)[0] is addr
        assert thread.replay_tables(13)[2] != page or not page

    def test_tables_not_pickled(self, matrix_trace):
        import pickle

        thread = matrix_trace.threads[0]
        thread.replay_tables(12)
        clone = pickle.loads(pickle.dumps(thread))
        assert not hasattr(clone, "_replay_tables")
        assert clone.addr.tolist() == thread.addr.tolist()


# ----------------------------------------------------------------------
# PR 6: the batch replay kernel vs the inline loop vs the reference path
# ----------------------------------------------------------------------

import os  # noqa: E402

from repro.errors import ConfigurationError  # noqa: E402
from repro.sched import get_policy, policy_names  # noqa: E402
from repro.sim.batch import numpy_available  # noqa: E402
from repro.sim.tlb import PAGE_SHIFT, Tlb  # noqa: E402
from repro.workloads.trace import KIND_INSTR  # noqa: E402

_BATCH_OK = numpy_available() and not os.environ.get("REPRO_NO_BATCH")

needs_batch = pytest.mark.skipif(
    not _BATCH_OK, reason="numpy unavailable or REPRO_NO_BATCH set"
)

_SPECIALIZED_OK = not os.environ.get("REPRO_NO_SPECIALIZE")

needs_specialized = pytest.mark.skipif(
    not _SPECIALIZED_OK, reason="REPRO_NO_SPECIALIZE set"
)

#: Policies the batch kernel cannot run (structural blockers); forcing
#: kernel="batch" on them must raise, and auto keeps them inline.
BATCH_INELIGIBLE = frozenset({"nextline"})

KERNEL_MATRIX_WORKLOADS = ("tpcc-1", "webserve", "phased")


@pytest.fixture(scope="module")
def kernel_traces():
    return {
        workload: standard_trace(workload, ScalePreset.SMOKE, seed=3)
        for workload in KERNEL_MATRIX_WORKLOADS
    }


def _run_kernel(trace, variant: str, kernel: str) -> str:
    engine = ReplayEngine(trace, SimConfig(variant=variant, kernel=kernel))
    assert engine.kernel == kernel
    return result_to_json(engine.run())


class TestKernelEquivalenceMatrix:
    """Every registered policy × three workloads: the four kernels are
    byte-identical (the batch leg skips structurally ineligible
    policies, whose batch request is pinned to raise below; the
    specialized leg runs every policy — all ten are eligible)."""

    @pytest.mark.parametrize("workload", KERNEL_MATRIX_WORKLOADS)
    @pytest.mark.parametrize("variant", sorted(policy_names()))
    def test_kernels_byte_identical(self, kernel_traces, workload, variant):
        trace = kernel_traces[workload]
        inline = _run_kernel(trace, variant, "inline")
        fallback = _run_kernel(trace, variant, "fallback")
        assert inline == fallback
        if _BATCH_OK and variant not in BATCH_INELIGIBLE:
            assert _run_kernel(trace, variant, "batch") == inline
        if _SPECIALIZED_OK:
            assert _run_kernel(trace, variant, "specialized") == inline


class TestKernelSelection:
    def test_auto_resolves_to_inline(self, matrix_trace, monkeypatch):
        # The measured negative result: on the paper's thrash-regime
        # traces the batch kernel loses to the inline loop, so auto
        # must never pick it (see sim/batch.py). REPRO_KERNEL re-routes
        # auto fleet-wide (the CI specialized leg), so pin the default
        # resolution with the override cleared.
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        engine = ReplayEngine(matrix_trace, SimConfig(variant="slicc"))
        assert engine.kernel == "inline"
        assert engine._batch is None
        assert engine._fast_i and engine._fast_d

    @needs_batch
    def test_explicit_batch_honoured(self, matrix_trace):
        engine = ReplayEngine(
            matrix_trace, SimConfig(variant="slicc", kernel="batch")
        )
        assert engine.kernel == "batch"
        assert engine._batch is not None

    def test_fallback_disables_fast_flags(self, matrix_trace):
        engine = ReplayEngine(
            matrix_trace, SimConfig(variant="base", kernel="fallback")
        )
        assert engine.kernel == "fallback"
        assert not engine._fast_i and not engine._fast_d

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            SimConfig(kernel="vectorised")

    @needs_batch
    def test_ineligible_policy_raises_on_forced_batch(self, matrix_trace):
        with pytest.raises(ConfigurationError, match="ineligible"):
            ReplayEngine(
                matrix_trace, SimConfig(variant="nextline", kernel="batch")
            )

    @needs_batch
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"collect_miss_classes": True},
            {"model_l2_capacity": True},
            {"variant": "slicc", "data_prefetch_n": 4},
        ],
        ids=["classifiers", "nuca", "data-prefetch"],
    )
    def test_structural_blockers_raise_on_forced_batch(
        self, matrix_trace, kwargs
    ):
        kwargs.setdefault("variant", "base")
        with pytest.raises(ConfigurationError, match="ineligible"):
            ReplayEngine(matrix_trace, SimConfig(kernel="batch", **kwargs))

    def test_no_batch_env_vetoes_forced_batch(self, matrix_trace, monkeypatch):
        monkeypatch.setenv("REPRO_NO_BATCH", "1")
        with pytest.raises(ConfigurationError, match="REPRO_NO_BATCH"):
            ReplayEngine(
                matrix_trace, SimConfig(variant="base", kernel="batch")
            )
        # auto is unaffected: it never picks batch anyway.
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        engine = ReplayEngine(matrix_trace, SimConfig(variant="base"))
        assert engine.kernel == "inline"

    def test_batch_kernel_safe_flag_blocks(self, matrix_trace, monkeypatch):
        cls = get_policy("base")
        monkeypatch.setattr(cls, "batch_kernel_safe", False)
        engine = ReplayEngine(matrix_trace, SimConfig(variant="base"))
        assert "batch_kernel_safe" in " ".join(engine._batch_blockers())
        if _BATCH_OK:
            with pytest.raises(ConfigurationError, match="batch_kernel_safe"):
                ReplayEngine(
                    matrix_trace, SimConfig(variant="base", kernel="batch")
                )

    def test_kernel_excluded_from_spec_keys(self):
        from repro.exp.spec import ExperimentSpec

        base = ExperimentSpec("tpcc-1", config=SimConfig(variant="slicc"))
        forced = ExperimentSpec(
            "tpcc-1", config=SimConfig(variant="slicc", kernel="batch")
        )
        assert base.key() == forced.key()


@needs_batch
class TestBatchTables:
    def test_tables_memoised_per_geometry(self, matrix_trace):
        thread = matrix_trace.threads[0]
        tables = thread.batch_tables(PAGE_SHIFT, 64, 64, 8)
        assert thread.batch_tables(PAGE_SHIFT, 64, 64, 8) is tables
        other = thread.batch_tables(PAGE_SHIFT, 128, 64, 8)
        assert other is not tables

    def test_row_ids_and_prefix_match_python(self, matrix_trace):
        thread = matrix_trace.threads[0]
        nis, nds, width = 64, 64, 8
        row, flat, nib, spos, ipos, dpos, *_ = thread.batch_tables(
            PAGE_SHIFT, nis, nds, width
        )
        addr = thread.addr.tolist()
        kind = thread.kind.tolist()
        expect_rows = [
            (a & (nis - 1)) if k == KIND_INSTR else nis + (a & (nds - 1))
            for a, k in zip(addr, kind)
        ]
        assert row.tolist() == expect_rows
        assert flat.tolist() == [r * width for r in expect_rows]
        run = 0
        for i, k in enumerate(kind):
            assert nib[i] == run
            if k == KIND_INSTR:
                run += 1
        assert nib[len(kind)] == run
        assert ipos.tolist() == [
            i for i, k in enumerate(kind) if k == KIND_INSTR
        ]
        assert dpos.tolist() == [
            i for i, k in enumerate(kind) if k != KIND_INSTR
        ]

    def test_tables_not_pickled(self, matrix_trace):
        import pickle

        thread = matrix_trace.threads[0]
        thread.batch_tables(PAGE_SHIFT, 64, 64, 8)
        clone = pickle.loads(pickle.dumps(thread))
        assert not hasattr(clone, "_batch_tables")
        assert clone.addr.tolist() == thread.addr.tolist()


class TestBatchEntryPoints:
    @needs_batch
    def test_batch_export_mirrors_residency(self, tiny_params):
        cache = SetAssociativeCache(tiny_params)
        n_sets = tiny_params.n_sets
        blocks = [0, n_sets, 2 * n_sets, 3, n_sets + 3]
        for block in blocks:
            cache.access_fast(block)
        tags, occ = cache.batch_export()
        assert tags.shape == (n_sets, tiny_params.assoc)
        assert occ[0] == 3 and occ[3] == 2
        resident = set(tags[tags != -1].tolist())
        assert resident == set(blocks)
        assert cache.probe_batch(blocks) == [True] * len(blocks)
        assert cache.probe_batch([7 * n_sets]) == [False]
        with pytest.raises(ValueError):
            cache.batch_export(tiny_params.assoc - 1)

    def test_tlb_access_pages_matches_scalar(self):
        a, b = Tlb(entries=4), Tlb(entries=4)
        pages = [1, 2, 3, 1, 4, 5, 6, 2, 1]
        for page in pages:
            a.access(page << PAGE_SHIFT)
        misses = b.access_pages(pages)
        assert misses == a.misses == b.misses
        assert list(a._map) == list(b._map)
        # accesses is bulk-added by the caller, not by access_pages.
        assert b.accesses == 0


# ----------------------------------------------------------------------
# PR 10: the per-config specialized (generated) kernel
# ----------------------------------------------------------------------

import dataclasses  # noqa: E402

from repro.params import SystemParams  # noqa: E402
from repro.sim import specialize  # noqa: E402


def _non_lru_system() -> SystemParams:
    system = SystemParams()
    return dataclasses.replace(
        system, l1d=dataclasses.replace(system.l1d, policy="srrip")
    )


class TestSpecializedSelection:
    @needs_specialized
    def test_explicit_specialized_honoured(self, matrix_trace):
        engine = ReplayEngine(
            matrix_trace, SimConfig(variant="slicc", kernel="specialized")
        )
        assert engine.kernel == "specialized"
        assert engine._specialized is not None

    def test_no_specialize_env_vetoes_forced(self, matrix_trace, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SPECIALIZE", "1")
        with pytest.raises(ConfigurationError, match="REPRO_NO_SPECIALIZE"):
            ReplayEngine(
                matrix_trace,
                SimConfig(variant="base", kernel="specialized"),
            )
        # auto is unaffected (and a fleet-wide REPRO_KERNEL=specialized
        # override is silently neutralised by the veto).
        monkeypatch.setenv("REPRO_KERNEL", "specialized")
        engine = ReplayEngine(matrix_trace, SimConfig(variant="base"))
        assert engine.kernel == "inline"

    def test_specialize_safe_flag_blocks(self, matrix_trace, monkeypatch):
        # The veto raises before blockers are consulted; neutralise it
        # so this test pins the blocker message under every CI leg.
        monkeypatch.delenv("REPRO_NO_SPECIALIZE", raising=False)
        cls = get_policy("base")
        monkeypatch.setattr(cls, "specialize_safe", False)
        engine = ReplayEngine(matrix_trace, SimConfig(variant="base"))
        assert "specialize_safe" in " ".join(engine._specialize_blockers())
        with pytest.raises(ConfigurationError, match="specialize_safe"):
            ReplayEngine(
                matrix_trace,
                SimConfig(variant="base", kernel="specialized"),
            )

    def test_non_lru_l1_blocks(self, matrix_trace, monkeypatch):
        monkeypatch.delenv("REPRO_NO_SPECIALIZE", raising=False)
        with pytest.raises(ConfigurationError, match="non-LRU L1-D"):
            ReplayEngine(
                matrix_trace,
                SimConfig(
                    variant="base",
                    system=_non_lru_system(),
                    kernel="specialized",
                ),
            )

    @needs_specialized
    def test_repro_kernel_env_resolves_auto(self, matrix_trace, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "specialized")
        engine = ReplayEngine(matrix_trace, SimConfig(variant="slicc"))
        assert engine.kernel == "specialized"
        # Explicit kernels keep their request under the override.
        engine = ReplayEngine(
            matrix_trace, SimConfig(variant="slicc", kernel="inline")
        )
        assert engine.kernel == "inline"

    def test_repro_kernel_env_silent_fallback(self, matrix_trace, monkeypatch):
        # A fleet override must not break ineligible configs: auto falls
        # back to inline silently instead of raising.
        monkeypatch.setenv("REPRO_KERNEL", "specialized")
        engine = ReplayEngine(
            matrix_trace,
            SimConfig(variant="base", system=_non_lru_system()),
        )
        assert engine.kernel == "inline"

    def test_repro_kernel_env_unknown_raises(self, matrix_trace, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "vectorised")
        with pytest.raises(ConfigurationError, match="REPRO_KERNEL"):
            ReplayEngine(matrix_trace, SimConfig(variant="base"))

    def test_specialized_excluded_from_spec_keys(self):
        from repro.exp.spec import ExperimentSpec

        base = ExperimentSpec("tpcc-1", config=SimConfig(variant="slicc"))
        forced = ExperimentSpec(
            "tpcc-1",
            config=SimConfig(variant="slicc", kernel="specialized"),
        )
        assert base.key() == forced.key()


class TestSpecializedGeneration:
    def _spec(self, matrix_trace, **kwargs) -> "specialize.KernelSpec":
        engine = ReplayEngine(matrix_trace, SimConfig(**kwargs))
        return specialize.spec_from_engine(engine)

    def test_generated_source_deterministic(self, matrix_trace):
        for kwargs in (
            {"variant": "slicc"},
            {"variant": "steps", "collect_miss_classes": True},
            {"variant": "nextline", "model_l2_capacity": True},
        ):
            spec = self._spec(matrix_trace, **kwargs)
            first = specialize.generate_source(spec)
            assert first == specialize.generate_source(spec)
            # A reconstructed engine yields the same spec, so the memo
            # key is stable across engine instances.
            assert spec == self._spec(matrix_trace, **kwargs)
            compile(first, "<test>", "exec")

    def test_spec_canonicalises_inapplicable_knobs(self, matrix_trace):
        # Policies without SLICC machinery must not fragment the kernel
        # cache on SLICC thresholds: the spec zeroes them out.
        spec = self._spec(matrix_trace, variant="base")
        assert not spec.has_slicc and spec.mc_limit == 0
        assert spec.msv_window == 0 and spec.mtq_matched == 0

    def test_kernel_memoised_per_spec(self, matrix_trace):
        spec = self._spec(matrix_trace, variant="slicc")
        assert specialize.kernel_for(spec) is specialize.kernel_for(spec)

    def test_dump_env_writes_source(self, matrix_trace, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPECIALIZE_DUMP", str(tmp_path))
        spec = self._spec(matrix_trace, variant="slicc")
        specialize.kernel_for(spec)
        dumped = tmp_path / f"{specialize.signature(spec)}.py"
        assert dumped.exists()
        assert dumped.read_text() == specialize.generate_source(spec)

    def test_aot_without_toolchain_falls_back(
        self, matrix_trace, tmp_path, monkeypatch
    ):
        # No mypyc/Cython in the test environment: the AOT leg must fall
        # back silently to the exec'd kernel and still run end-to-end.
        monkeypatch.delenv("REPRO_NO_SPECIALIZE", raising=False)
        monkeypatch.setenv("REPRO_SPECIALIZE_AOT", "1")
        monkeypatch.setenv("REPRO_SPECIALIZE_CACHE", str(tmp_path))
        specialize.clear_cache()
        try:
            inline = _run_kernel(matrix_trace, "slicc", "inline")
            assert _run_kernel(matrix_trace, "slicc", "specialized") == inline
        finally:
            specialize.clear_cache()
