"""Unit tests for the PR 2/PR 3 hot-path mechanisms.

The golden-equivalence suite proves the full engine is unchanged
end-to-end; these tests pin the individual mechanisms — the
allocation-free cache access, the age-counter LRU backend, the
transposed bloom store, and (PR 3) the inline fast paths for the
next-line prefetcher, the miss classifiers, the banked NUCA L2 and the
migration data prefetcher — against small hand-checkable scenarios and
the reference implementations they replace.
"""

from __future__ import annotations

import random

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.policies.base import make_policy
from repro.core.signature import BloomSignature, SignatureSet
from repro.exp.store import result_to_json
from repro.params import CacheParams, ScalePreset, SliccParams, SystemParams
from repro.sim.engine import ReplayEngine, SimConfig
from repro.sim.machine import Machine
from repro.workloads import standard_trace


@pytest.fixture
def tiny_params():
    return CacheParams(size_bytes=4 * 1024, assoc=4, policy="lru")


class TestAccessFast:
    def test_hit_and_miss_returns(self, tiny_params):
        cache = SetAssociativeCache(tiny_params)
        assert cache.access_fast(5) is False
        assert cache.access_fast(5) is True

    def test_last_victim_matches_access_wrapper(self, tiny_params):
        fast = SetAssociativeCache(tiny_params)
        slow = SetAssociativeCache(tiny_params)
        n_sets = tiny_params.n_sets
        # Fill one set past capacity so evictions happen.
        blocks = [i * n_sets for i in range(6)]
        for block in blocks:
            hit_fast = fast.access_fast(block)
            result = slow.access(block)
            assert hit_fast == result.hit
            if not result.hit:
                assert fast.last_victim == result.victim

    def test_bypass_sets_no_victim(self, tiny_params):
        cache = SetAssociativeCache(tiny_params)
        n_sets = tiny_params.n_sets
        for i in range(4):
            cache.access_fast(i * n_sets)
        assert cache.access_fast(4 * n_sets, fill=False) is False
        assert cache.last_victim is None
        # The set was not disturbed.
        assert all(cache.probe(i * n_sets) for i in range(4))


class _ListLru:
    """Reference list-based LRU family (the pre-PR implementation)."""

    def __init__(self, n_sets, assoc, insert_at):
        self._order = [[] for _ in range(n_sets)]
        self._insert_at = insert_at  # "mru" or "lru"
        self._fills = 0

    def on_hit(self, s, w):
        self._order[s].remove(w)
        self._order[s].append(w)

    def on_fill(self, s, w):
        order = self._order[s]
        if w in order:
            order.remove(w)
        if self._insert_at == "mru":
            order.append(w)
        else:
            order.insert(0, w)

    def choose_victim(self, s):
        return self._order[s][0]


@pytest.mark.parametrize("policy_name,insert_at", [("lru", "mru"), ("lip", "lru")])
def test_age_counters_match_list_reference(policy_name, insert_at):
    """Random hit/fill/victim interleavings agree with the list form."""
    n_sets, assoc = 4, 4
    rng = random.Random(13)
    aged = make_policy(policy_name, n_sets, assoc)
    ref = _ListLru(n_sets, assoc, insert_at)
    resident: dict[int, set[int]] = {s: set() for s in range(n_sets)}
    for _ in range(2000):
        s = rng.randrange(n_sets)
        if len(resident[s]) < assoc:
            w = min(set(range(assoc)) - resident[s])
            resident[s].add(w)
            aged.on_fill(s, w)
            ref.on_fill(s, w)
        elif rng.random() < 0.5:
            w = rng.choice(sorted(resident[s]))
            aged.on_hit(s, w)
            ref.on_hit(s, w)
        else:
            assert aged.choose_victim(s) == ref.choose_victim(s)
            w = ref.choose_victim(s)
            # Refill the victim way, as the cache would.
            aged.on_fill(s, w)
            ref.on_fill(s, w)


def test_recency_order_reports_lru_first():
    policy = make_policy("lru", 1, 4)
    for way in (2, 0, 3, 1):
        policy.on_fill(0, way)
    policy.on_hit(0, 2)
    assert policy.recency_order(0) == [0, 3, 1, 2]
    assert policy.choose_victim(0) == 0


class TestTransposedSignatures:
    def test_shared_store_keeps_per_core_bits_separate(self, tiny_params):
        shared = SignatureSet(64)
        c0 = SetAssociativeCache(tiny_params)
        c1 = SetAssociativeCache(tiny_params)
        s0 = BloomSignature(64, c0, shared=shared, core=0)
        s1 = BloomSignature(64, c1, shared=shared, core=1)
        s0.insert(5)
        assert s0.probe(5) and not s1.probe(5)
        s1.insert(5)
        assert shared.masks[5] == 0b11
        s0.on_evict(5)  # block 5 not resident in c0 -> bit clears
        assert not s0.probe(5) and s1.probe(5)

    def test_standalone_signature_still_works(self, tiny_params):
        cache = SetAssociativeCache(tiny_params)
        sig = BloomSignature(64, cache)
        sig.insert(7)
        assert sig.probe(7)
        assert sig.popcount() == 1
        sig.rebuild()
        assert sig.popcount() == 0

    def test_presence_mask_matches_per_core_probes(self):
        system = SystemParams()
        machine = Machine(system, slicc=SliccParams(), with_signatures=True)
        block = 42
        for core in (1, 3, 6):
            machine.signature_insert(core, block)
        cores = list(range(system.n_cores))
        cores_mask = sum(1 << c for c in cores)
        expected = 0
        for core in cores:
            if core != 1 and machine.signatures[core].probe(block):
                expected |= 1 << core
        assert machine.presence_mask(block, 1, cores_mask) == expected
        assert machine.presence_mask(block, 1, cores_mask) == (1 << 3) | (1 << 6)

    def test_mismatched_shared_bits_rejected(self, tiny_params):
        from repro.errors import ConfigurationError

        cache = SetAssociativeCache(tiny_params)
        with pytest.raises(ConfigurationError):
            BloomSignature(128, cache, shared=SignatureSet(64))


# ----------------------------------------------------------------------
# PR 3: inline fast paths vs the generic reference implementation
# ----------------------------------------------------------------------

#: One configuration per inline branch of the quantum loop, plus the
#: combinations: next-line prefetcher (consume/issue/evict), I+D miss
#: classifiers (shadow LRU + three-C counts), banked NUCA (both record
#: kinds), the migration data prefetcher (history/pending), and each of
#: them stacked on the SLICC/STEPS tracker paths.
FAST_PATH_CONFIGS = (
    ("nextline", {}),
    ("base-classify", {"variant": "base", "collect_miss_classes": True}),
    ("pif-classify", {"variant": "pif", "collect_miss_classes": True}),
    ("slicc-classify", {"variant": "slicc", "collect_miss_classes": True}),
    ("base-nuca", {"variant": "base", "model_l2_capacity": True}),
    ("nextline-nuca", {"variant": "nextline", "model_l2_capacity": True}),
    ("slicc-dp", {"variant": "slicc", "data_prefetch_n": 4}),
    (
        "slicc-everything",
        {
            "variant": "slicc",
            "model_l2_capacity": True,
            "data_prefetch_n": 4,
            "collect_miss_classes": True,
        },
    ),
    (
        "steps-nuca-classify",
        {
            "variant": "steps",
            "model_l2_capacity": True,
            "collect_miss_classes": True,
        },
    ),
    (
        "slicc-sw-nuca-classify",
        {
            "variant": "slicc-sw",
            "model_l2_capacity": True,
            "collect_miss_classes": True,
        },
    ),
)


@pytest.fixture(scope="module")
def matrix_trace():
    return standard_trace("tpcc-1", ScalePreset.SMOKE, seed=3)


def _run(trace, kwargs, fast: bool):
    config = (
        SimConfig(**kwargs) if "variant" in kwargs
        else SimConfig(variant="nextline", **kwargs)
    )
    engine = ReplayEngine(trace, config)
    if not fast:
        # Force every record through the generic reference path
        # (_process_instruction/_process_data). These flags exist for
        # exactly this test: proving the inline loop bit-identical.
        engine._fast_i = False
        engine._fast_d = False
    return result_to_json(engine.run())


class TestFastVsFallbackMatrix:
    @pytest.mark.parametrize(
        "name,kwargs",
        FAST_PATH_CONFIGS,
        ids=[name for name, _ in FAST_PATH_CONFIGS],
    )
    def test_inline_matches_reference(self, matrix_trace, name, kwargs):
        fast = _run(matrix_trace, dict(kwargs), fast=True)
        reference = _run(matrix_trace, dict(kwargs), fast=False)
        assert fast == reference

    def test_mixed_fast_instruction_reference_data(self, matrix_trace):
        """Per-kind flags are independent: inline I records + reference
        D records (and vice versa) still agree with the full inline run,
        including the shared NUCA bank statistics."""
        config = SimConfig(
            variant="slicc",
            model_l2_capacity=True,
            data_prefetch_n=4,
            collect_miss_classes=True,
        )
        full = ReplayEngine(matrix_trace, config)
        expected = result_to_json(full.run())
        for fast_i, fast_d in ((True, False), (False, True)):
            engine = ReplayEngine(matrix_trace, config)
            engine._fast_i = fast_i
            engine._fast_d = fast_d
            assert result_to_json(engine.run()) == expected, (fast_i, fast_d)


class TestFastPathCoverage:
    def test_nuca_prefetcher_combo_takes_fast_path(self, matrix_trace):
        """Regression: a NUCA+prefetcher combination must run inline —
        exactly the class of config PR 2 sent through the slow generic
        fallback."""
        engine = ReplayEngine(
            matrix_trace,
            SimConfig(variant="nextline", model_l2_capacity=True),
        )
        assert engine.prefetchers is not None
        assert engine.machine.nuca is not None
        assert engine._fast_i and engine._fast_d

    @pytest.mark.parametrize(
        "name,kwargs",
        FAST_PATH_CONFIGS,
        ids=[name for name, _ in FAST_PATH_CONFIGS],
    )
    def test_every_config_is_fast(self, matrix_trace, name, kwargs):
        kwargs = dict(kwargs)
        config = (
            SimConfig(**kwargs) if "variant" in kwargs
            else SimConfig(variant="nextline", **kwargs)
        )
        engine = ReplayEngine(matrix_trace, config)
        assert engine._fast_i and engine._fast_d

    def test_nuca_bank_stats_flushed(self, matrix_trace):
        """The batched bank counters must land in the bank CacheStats by
        the time run() returns (inline runs only batch, never lose)."""
        config = SimConfig(variant="base", model_l2_capacity=True)
        fast = ReplayEngine(matrix_trace, config)
        fast.run()
        ref = ReplayEngine(matrix_trace, config)
        ref._fast_i = ref._fast_d = False
        ref.run()
        fast_stats = fast.machine.nuca.stats()
        ref_stats = ref.machine.nuca.stats()
        assert fast_stats.accesses == ref_stats.accesses > 0
        assert fast_stats.misses == ref_stats.misses
        assert fast_stats.evictions == ref_stats.evictions


class TestReplayTables:
    def test_tables_cached_and_consistent(self, matrix_trace):
        thread = matrix_trace.threads[0]
        addr, kind, page = thread.replay_tables(12)
        assert addr == thread.addr.tolist()
        assert kind == thread.kind.tolist()
        assert page == [a >> 12 for a in addr]
        # Same object on repeat (memoised), rebuilt for another shift.
        assert thread.replay_tables(12)[0] is addr
        assert thread.replay_tables(13)[2] != page or not page

    def test_tables_not_pickled(self, matrix_trace):
        import pickle

        thread = matrix_trace.threads[0]
        thread.replay_tables(12)
        clone = pickle.loads(pickle.dumps(thread))
        assert not hasattr(clone, "_replay_tables")
        assert clone.addr.tolist() == thread.addr.tolist()
