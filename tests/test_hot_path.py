"""Unit tests for the PR 2 hot-path mechanisms.

The golden-equivalence suite proves the full engine is unchanged
end-to-end; these tests pin the individual mechanisms — the
allocation-free cache access, the age-counter LRU backend, and the
transposed bloom store — against small hand-checkable scenarios and
reference implementations.
"""

from __future__ import annotations

import random

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.policies.base import make_policy
from repro.core.signature import BloomSignature, SignatureSet
from repro.params import CacheParams, SliccParams, SystemParams
from repro.sim.machine import Machine


@pytest.fixture
def tiny_params():
    return CacheParams(size_bytes=4 * 1024, assoc=4, policy="lru")


class TestAccessFast:
    def test_hit_and_miss_returns(self, tiny_params):
        cache = SetAssociativeCache(tiny_params)
        assert cache.access_fast(5) is False
        assert cache.access_fast(5) is True

    def test_last_victim_matches_access_wrapper(self, tiny_params):
        fast = SetAssociativeCache(tiny_params)
        slow = SetAssociativeCache(tiny_params)
        n_sets = tiny_params.n_sets
        # Fill one set past capacity so evictions happen.
        blocks = [i * n_sets for i in range(6)]
        for block in blocks:
            hit_fast = fast.access_fast(block)
            result = slow.access(block)
            assert hit_fast == result.hit
            if not result.hit:
                assert fast.last_victim == result.victim

    def test_bypass_sets_no_victim(self, tiny_params):
        cache = SetAssociativeCache(tiny_params)
        n_sets = tiny_params.n_sets
        for i in range(4):
            cache.access_fast(i * n_sets)
        assert cache.access_fast(4 * n_sets, fill=False) is False
        assert cache.last_victim is None
        # The set was not disturbed.
        assert all(cache.probe(i * n_sets) for i in range(4))


class _ListLru:
    """Reference list-based LRU family (the pre-PR implementation)."""

    def __init__(self, n_sets, assoc, insert_at):
        self._order = [[] for _ in range(n_sets)]
        self._insert_at = insert_at  # "mru" or "lru"
        self._fills = 0

    def on_hit(self, s, w):
        self._order[s].remove(w)
        self._order[s].append(w)

    def on_fill(self, s, w):
        order = self._order[s]
        if w in order:
            order.remove(w)
        if self._insert_at == "mru":
            order.append(w)
        else:
            order.insert(0, w)

    def choose_victim(self, s):
        return self._order[s][0]


@pytest.mark.parametrize("policy_name,insert_at", [("lru", "mru"), ("lip", "lru")])
def test_age_counters_match_list_reference(policy_name, insert_at):
    """Random hit/fill/victim interleavings agree with the list form."""
    n_sets, assoc = 4, 4
    rng = random.Random(13)
    aged = make_policy(policy_name, n_sets, assoc)
    ref = _ListLru(n_sets, assoc, insert_at)
    resident: dict[int, set[int]] = {s: set() for s in range(n_sets)}
    for _ in range(2000):
        s = rng.randrange(n_sets)
        if len(resident[s]) < assoc:
            w = min(set(range(assoc)) - resident[s])
            resident[s].add(w)
            aged.on_fill(s, w)
            ref.on_fill(s, w)
        elif rng.random() < 0.5:
            w = rng.choice(sorted(resident[s]))
            aged.on_hit(s, w)
            ref.on_hit(s, w)
        else:
            assert aged.choose_victim(s) == ref.choose_victim(s)
            w = ref.choose_victim(s)
            # Refill the victim way, as the cache would.
            aged.on_fill(s, w)
            ref.on_fill(s, w)


def test_recency_order_reports_lru_first():
    policy = make_policy("lru", 1, 4)
    for way in (2, 0, 3, 1):
        policy.on_fill(0, way)
    policy.on_hit(0, 2)
    assert policy.recency_order(0) == [0, 3, 1, 2]
    assert policy.choose_victim(0) == 0


class TestTransposedSignatures:
    def test_shared_store_keeps_per_core_bits_separate(self, tiny_params):
        shared = SignatureSet(64)
        c0 = SetAssociativeCache(tiny_params)
        c1 = SetAssociativeCache(tiny_params)
        s0 = BloomSignature(64, c0, shared=shared, core=0)
        s1 = BloomSignature(64, c1, shared=shared, core=1)
        s0.insert(5)
        assert s0.probe(5) and not s1.probe(5)
        s1.insert(5)
        assert shared.masks[5] == 0b11
        s0.on_evict(5)  # block 5 not resident in c0 -> bit clears
        assert not s0.probe(5) and s1.probe(5)

    def test_standalone_signature_still_works(self, tiny_params):
        cache = SetAssociativeCache(tiny_params)
        sig = BloomSignature(64, cache)
        sig.insert(7)
        assert sig.probe(7)
        assert sig.popcount() == 1
        sig.rebuild()
        assert sig.popcount() == 0

    def test_presence_mask_matches_per_core_probes(self):
        system = SystemParams()
        machine = Machine(system, slicc=SliccParams(), with_signatures=True)
        block = 42
        for core in (1, 3, 6):
            machine.signature_insert(core, block)
        cores = list(range(system.n_cores))
        cores_mask = sum(1 << c for c in cores)
        expected = 0
        for core in cores:
            if core != 1 and machine.signatures[core].probe(block):
                expected |= 1 << core
        assert machine.presence_mask(block, 1, cores_mask) == expected
        assert machine.presence_mask(block, 1, cores_mask) == (1 << 3) | (1 << 6)

    def test_mismatched_shared_bits_rejected(self, tiny_params):
        from repro.errors import ConfigurationError

        cache = SetAssociativeCache(tiny_params)
        with pytest.raises(ConfigurationError):
            BloomSignature(128, cache, shared=SignatureSet(64))
