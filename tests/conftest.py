"""Shared fixtures for the test suite."""

import pytest

from repro.params import CacheParams, ScalePreset, SliccParams, SystemParams
from repro.workloads import standard_trace


@pytest.fixture(scope="session")
def tiny_cache_params():
    """A 4KB 4-way cache: 16 sets, 64 blocks — small enough to reason
    about by hand in tests."""
    return CacheParams(size_bytes=4 * 1024, assoc=4, policy="lru")


@pytest.fixture(scope="session")
def smoke_tpcc():
    """A smoke-scale TPC-C trace shared across integration tests."""
    return standard_trace("tpcc-1", ScalePreset.SMOKE, seed=7)


@pytest.fixture(scope="session")
def smoke_tpce():
    """A smoke-scale TPC-E trace shared across integration tests."""
    return standard_trace("tpce", ScalePreset.SMOKE, seed=7)


@pytest.fixture(scope="session")
def smoke_mapreduce():
    """A smoke-scale MapReduce trace shared across integration tests."""
    return standard_trace("mapreduce", ScalePreset.SMOKE, seed=7)


@pytest.fixture
def default_system():
    return SystemParams()


@pytest.fixture
def default_slicc():
    return SliccParams()
