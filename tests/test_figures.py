"""Tests for the figure registry, the report generator, and the
``repro paper`` CLI (resumable skip logic)."""

import csv

import pytest

from repro.analysis import write_figure_report
from repro.analysis.paper_report import figure_table
from repro.cli import main
from repro.errors import ConfigurationError
from repro.exp import (
    Figure,
    ResultStore,
    Runner,
    figure_names,
    get_figure,
    register_figure,
    resolve_store_path,
    select_figures,
)
from repro.exp.figures import FIGURE_WORKLOADS
from repro.workloads import workload_names

EXPECTED_FIGURES = [
    "fig7-thresholds",
    "fig8-dilution",
    "fig10-mpki",
    "fig11-speedup",
    "webserve-churn",
    "phase-robustness",
    "policy-comparison",
]


class TestRegistry:
    def test_registered_names(self):
        assert figure_names() == EXPECTED_FIGURES

    def test_unknown_figure_is_config_error(self):
        with pytest.raises(ConfigurationError):
            get_figure("fig99-imaginary")

    def test_duplicate_registration_rejected(self):
        fig = get_figure("fig8-dilution")
        with pytest.raises(ConfigurationError):
            register_figure(fig)

    def test_select_defaults_to_all(self):
        assert [f.name for f in select_figures()] == EXPECTED_FIGURES
        assert [f.name for f in select_figures(["fig10-mpki"])] == [
            "fig10-mpki"
        ]

    def test_figure_workloads_are_registered(self):
        assert set(FIGURE_WORKLOADS) <= set(workload_names())

    @pytest.mark.parametrize("name", EXPECTED_FIGURES)
    @pytest.mark.parametrize("scale", ["smoke", "paper"])
    def test_every_figure_builds_valid_specs_at_both_scales(
        self, name, scale
    ):
        """Spec construction validates workload/scale eagerly, so a
        successful build is a valid spec family; keys must be computable
        and distinct per row."""
        figure = get_figure(name)
        rows = figure.build(scale)
        assert rows
        keys = [row.spec.key() for row in rows]
        assert len(set(keys)) == len(keys)
        for row in rows:
            assert row.spec.scale == scale
            if row.baseline is not None:
                assert row.baseline.variant == "base"
                assert row.baseline.workload == row.spec.workload
        specs = figure.specs(scale)
        assert len({spec.key() for spec in specs}) == len(specs)

    def test_specs_include_row_and_baseline_specs(self):
        figure = get_figure("fig8-dilution")
        rows = figure.build("smoke")
        keys = {spec.key() for spec in figure.specs("smoke")}
        assert {row.spec.key() for row in rows} <= keys
        assert {row.baseline.key() for row in rows} <= keys

    def test_policy_comparison_sweeps_the_whole_registry(self):
        """The policy-comparison figure is registry-driven: one row per
        registered policy per workload, so a newly registered policy is
        swept without a figure edit."""
        from repro.exp.figures import POLICY_COMPARISON_WORKLOADS
        from repro.sched import policy_names

        rows = get_figure("policy-comparison").build("smoke")
        swept = {(row.spec.workload, row.spec.variant) for row in rows}
        assert swept == {
            (workload, policy)
            for workload in POLICY_COMPARISON_WORKLOADS
            for policy in policy_names()
        }
        for row in rows:
            assert row.baseline is not None


@pytest.fixture(scope="module")
def tiny_figure():
    """An unregistered two-row figure small enough to simulate in-test."""

    def _build(scale):
        from repro.exp.figures import FigureRow, _spec

        baseline = _spec("mapreduce", scale, "base")
        return [
            FigureRow(baseline, baseline),
            FigureRow(_spec("mapreduce", scale, "nextline"), baseline),
        ]

    return Figure(
        name="tiny-test",
        title="Tiny test figure",
        description="two mapreduce points",
        builder=_build,
        metrics=("I-MPKI", "migrations"),
    )


class TestReport:
    def test_markdown_and_csv_match(self, tiny_figure, tmp_path):
        store = ResultStore()
        Runner(store=store).run(tiny_figure.specs("smoke"))
        rows = tiny_figure.build("smoke")
        paths = write_figure_report(tiny_figure, rows, store, tmp_path)

        md = paths["markdown"].read_text()
        assert md.startswith("## Tiny test figure")
        assert "| mapreduce/nextline |" in md
        # Baseline-relative columns present.
        assert "ΔI-MPKI" in md and "speedup" in md

        with paths["csv"].open() as fh:
            table = list(csv.reader(fh))
        header, body = table[0], table[1:]
        assert header[:3] == ["label", "workload", "variant"]
        assert "ΔI-MPKI" in header and "speedup" in header
        assert len(body) == len(rows)
        # The base row is its own baseline: speedup 1, delta 0.
        base_row = dict(zip(header, body[0]))
        assert float(base_row["speedup"]) == pytest.approx(1.0)
        assert float(base_row["ΔI-MPKI"]) == pytest.approx(0.0)
        # nextline prefetching strictly lowers I-MPKI vs base.
        next_row = dict(zip(header, body[1]))
        assert float(next_row["ΔI-MPKI"]) < 0.0

    def test_missing_result_raises(self, tiny_figure):
        with pytest.raises(ConfigurationError):
            figure_table(
                tiny_figure, tiny_figure.build("smoke"), ResultStore()
            )


class TestPaperCommand:
    def test_run_then_resume(self, tmp_path, capsys):
        out = str(tmp_path / "report")
        argv = ["paper", "--figures", "fig8-dilution", "--out", out]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "7 to simulate" in first
        assert (tmp_path / "report" / "fig8-dilution.md").exists()
        assert (tmp_path / "report" / "fig8-dilution.csv").exists()
        assert (tmp_path / "report" / "index.md").exists()
        # The store file is named for whichever backend is active
        # (results.jsonl by default, results.sqlite under the CI
        # sqlite matrix leg).
        assert resolve_store_path(tmp_path / "report").exists()

        # Second invocation: everything served from the store.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "7 already stored (skipped), 0 to simulate" in second
        assert "0 simulated" in second

    def test_scale_must_be_known(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["paper", "--scale", "huge", "--out", str(tmp_path)])

    def test_unknown_figure_is_clean_error(self, tmp_path, capsys):
        rc = main(["paper", "--figures", "fig99", "--out", str(tmp_path)])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_list_does_not_simulate(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["paper", "--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_FIGURES:
            assert name in out
        assert not (tmp_path / "report").exists()
