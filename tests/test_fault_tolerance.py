"""Recovery-matrix tests: the fault-injection harness driving the
fault-tolerant pool, the retrying Runner, and the crash-safe store
end to end.

Every scenario keys its fault schedule off the deterministic
``REPRO_FAULT`` plan, so these tests exercise real worker deaths, real
kills, and real torn file tails — repeatably, with zero flake surface.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import SweepFailure
from repro.exp import (
    ResultStore,
    Runner,
    audit_store,
    compact_store,
    result_to_json,
    spec_for,
)
from repro.exp.faults import FaultPlan, FaultRule
from repro.sim import simulate

pytestmark = pytest.mark.skipif(
    sys.platform != "linux", reason="fault matrix relies on fork workers"
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def specs_for(trace, variants=("base", "slicc", "steps")):
    return [spec_for(trace, variant=v) for v in variants]


class TestCrashRecovery:
    def test_crash_then_retry_succeeds(self, monkeypatch, smoke_tpcc):
        """crash:1@1 kills every first attempt; the respawned worker's
        retry completes and results are byte-identical to a fault-free
        run."""
        monkeypatch.setenv("REPRO_FAULT", "crash:1@1")
        specs = specs_for(smoke_tpcc)
        runner = Runner(store=ResultStore(), jobs=2, retries=2, backoff=0.01)
        results = runner.run(specs, trace=smoke_tpcc)
        stats = runner.last_stats
        assert stats.simulated == 3
        assert stats.failed == 0
        assert stats.retried == 3  # one crash per spec
        monkeypatch.delenv("REPRO_FAULT")
        for spec, result in zip(specs, results):
            direct = simulate(smoke_tpcc, config=spec.config)
            assert result_to_json(result) == result_to_json(direct)

    def test_doomed_specs_fail_alone(self, tmp_path, monkeypatch, smoke_tpcc):
        """Under a partial crash schedule, exactly the specs whose every
        attempt is scheduled to crash fail — the rest complete and
        persist, and a fault-free rerun heals the failures."""
        specs = specs_for(
            smoke_tpcc, variants=("base", "slicc", "slicc-sw", "steps")
        )
        keys = [spec.key() for spec in specs]
        retries = 1
        # The schedule is a pure function of (seed, key, attempt), so the
        # test derives its expectations from the same function the
        # workers consult: scan for a seed giving a mixed outcome.
        for seed in range(200):
            plan = FaultPlan((FaultRule("crash", 0.6),), seed=seed)
            doomed = {
                key
                for key in keys
                if all(
                    plan.should("crash", key, a) for a in range(retries + 1)
                )
            }
            if 0 < len(doomed) < len(keys):
                break
        else:  # pragma: no cover - 200 seeds all degenerate
            pytest.fail("no seed with a mixed crash schedule")
        monkeypatch.setenv("REPRO_FAULT", "crash:0.6")
        monkeypatch.setenv("REPRO_FAULT_SEED", str(seed))
        store = ResultStore(tmp_path)
        runner = Runner(store=store, jobs=2, retries=retries, backoff=0.01)
        with pytest.raises(SweepFailure) as excinfo:
            runner.run(specs, trace=smoke_tpcc)
        failed = {o.key for o in excinfo.value.failures}
        assert failed == doomed
        assert runner.last_stats.failed == len(doomed)
        for outcome in excinfo.value.failures:
            assert outcome.kind == "worker-death"
            assert "87" in outcome.error  # injected-crash exit code
            assert store.failure_info(outcome.key)["kind"] == "worker-death"
        # Survivors persisted; a fault-free rerun retries only the
        # doomed specs and clears their failure records.
        reloaded = ResultStore(tmp_path)
        assert set(reloaded.keys()) == set(keys) - doomed
        monkeypatch.delenv("REPRO_FAULT")
        monkeypatch.delenv("REPRO_FAULT_SEED")
        rerun = Runner(store=reloaded, jobs=2)
        rerun.run(specs, trace=smoke_tpcc)
        assert rerun.last_stats.simulated == len(doomed)
        assert rerun.last_stats.cached == len(keys) - len(doomed)
        assert ResultStore(tmp_path).failures() == {}


class TestTimeout:
    def test_hung_spec_is_killed_and_marked_timed_out(
        self, tmp_path, monkeypatch, smoke_tpcc
    ):
        """hang:1 parks the worker in a long sleep; the per-spec timeout
        kills it and the spec is terminal ``timed_out`` — no retry, so
        the sweep does not stall for another full timeout."""
        monkeypatch.setenv("REPRO_FAULT", "hang:1")
        store = ResultStore(tmp_path)
        runner = Runner(store=store, retries=2, timeout=0.5, backoff=0.01)
        (spec,) = specs_for(smoke_tpcc, variants=("base",))
        t0 = time.monotonic()
        with pytest.raises(SweepFailure) as excinfo:
            runner.run([spec], trace=smoke_tpcc)
        elapsed = time.monotonic() - t0
        (outcome,) = excinfo.value.failures
        assert outcome.kind == "timeout"
        assert outcome.attempts == 1  # terminal: never retried
        assert runner.last_stats.timed_out == 1
        assert runner.last_stats.failed == 1
        assert store.failure_info(spec.key())["kind"] == "timeout"
        assert elapsed < 10  # killed promptly, not after the 1h sleep

    def test_fast_specs_unaffected_by_generous_timeout(self, smoke_tpcc):
        runner = Runner(timeout=120, jobs=2)
        results = runner.run(specs_for(smoke_tpcc), trace=smoke_tpcc)
        assert runner.last_stats.timed_out == 0
        assert len(results) == 3


class TestTornWrites:
    def test_torn_appends_quarantine_and_compact_away(
        self, tmp_path, monkeypatch, smoke_tpcc
    ):
        """torn_write:1@1 tears the first append of every key. The sweep
        itself still succeeds (results are in memory); the next store
        open quarantines the fragments; a fault-free rerun re-derives
        the rows around the healed tail; compaction scrubs the file.

        Pinned to the jsonl backend: a torn append is physically
        impossible under the sqlite backend's WAL (commits are atomic),
        so the fault kind only applies here."""
        monkeypatch.setenv("REPRO_STORE_BACKEND", "jsonl")
        monkeypatch.setenv("REPRO_FAULT", "torn_write:1@1")
        specs = specs_for(smoke_tpcc)
        runner = Runner(store=ResultStore(tmp_path), jobs=2, backoff=0.01)
        results = runner.run(specs, trace=smoke_tpcc)
        assert len(results) == 3  # the sweep itself never noticed
        monkeypatch.delenv("REPRO_FAULT")

        with pytest.warns(UserWarning, match="corrupt line"):
            reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 0  # every append was torn
        assert reloaded.load_report.corrupt == 3
        assert reloaded.quarantine_path.exists()

        rerun = Runner(store=reloaded, jobs=2)
        rerun.run(specs, trace=smoke_tpcc)
        assert rerun.last_stats.simulated == 3

        audit = audit_store(tmp_path)
        assert not audit.clean and audit.corrupt == 3 and audit.keys == 3
        before, written = compact_store(tmp_path)
        assert before.corrupt == 3 and written == 3
        after = audit_store(tmp_path)
        assert after.clean and after.keys == 3 and after.reclaimable == 0
        final = ResultStore(tmp_path)  # loads silently: no warning path
        assert {r.variant for r in final.results()} == {
            "base",
            "slicc",
            "steps",
        }


class TestGracefulInterrupt:
    @pytest.mark.parametrize(
        "signum", [signal.SIGINT, signal.SIGTERM], ids=["SIGINT", "SIGTERM"]
    )
    def test_signal_drains_and_resume_skips_completed(self, tmp_path, signum):
        """SIGINT or SIGTERM mid-sweep: the run exits 130, the store
        holds exactly the completed rows (parseable, no torn tail), and
        a resumed run serves them from cache."""
        specfile = tmp_path / "exp.json"
        specfile.write_text(
            json.dumps(
                {
                    "workload": "tpcc-1",
                    "scale": "smoke",
                    "seed": 7,
                    "variant": "slicc-sw",
                    "axes": {"slicc.dilution_t": [2, 4, 6, 8, 10, 12]},
                    "baseline": True,
                }
            )
        )
        store = tmp_path / "results.jsonl"
        env = dict(
            os.environ,
            PYTHONPATH=os.path.join(REPO_ROOT, "src"),
            # Slow every spec down (sleep, then simulate) so the sweep is
            # reliably mid-flight when the signal lands.
            REPRO_FAULT="hang:1",
            REPRO_FAULT_HANG_S="0.5",
        )
        argv = [
            sys.executable,
            "-m",
            "repro",
            "exp",
            str(specfile),
            "--store",
            str(store),
            "--jobs",
            "2",
        ]
        proc = subprocess.Popen(
            argv,
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if store.exists() and store.read_text().count("\n") >= 1:
                    break
                if proc.poll() is not None:  # pragma: no cover
                    pytest.fail(
                        "sweep finished before the signal: "
                        + proc.communicate()[1]
                    )
                time.sleep(0.02)
            proc.send_signal(signum)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - hung child
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, stderr
        assert "interrupted" in stderr

        # Every persisted line is complete and parseable — the drain
        # flushed whole rows only.
        lines = store.read_text().splitlines()
        assert 1 <= len(lines) < 7
        for line in lines:
            row = json.loads(line)
            assert "result" in row
        completed = len(lines)

        # Resume without faults: completed rows come from the store.
        env.pop("REPRO_FAULT")
        env.pop("REPRO_FAULT_HANG_S")
        done = subprocess.run(
            argv,
            env=env,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert done.returncode == 0, done.stderr
        assert f"{completed} cached" in done.stdout
        assert len(ResultStore(store)) == 7

    def test_second_signal_aborts_immediately(self, tmp_path):
        """First SIGINT starts the graceful drain; with every in-flight
        spec hung for 60s the drain would block for the rest of the
        hour. A second signal escalates: workers are killed, nothing
        further is persisted, and the exit code is still 130 — within
        seconds, not after the hang."""
        specfile = tmp_path / "exp.json"
        specfile.write_text(
            json.dumps(
                {
                    "workload": "tpcc-1",
                    "scale": "smoke",
                    "seed": 7,
                    "variant": "slicc-sw",
                    "axes": {"slicc.dilution_t": [2, 4, 6, 8]},
                }
            )
        )
        store = tmp_path / "results.jsonl"
        env = dict(
            os.environ,
            PYTHONPATH=os.path.join(REPO_ROOT, "src"),
            REPRO_FAULT="hang:1",
            REPRO_FAULT_HANG_S="60",
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "exp",
                str(specfile),
                "--store",
                str(store),
                "--jobs",
                "2",
            ],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            # Wait until a forked worker is actually *inside* the
            # injected hang (parked in nanosleep) — children merely
            # existing is not enough: a signal landing before the first
            # dispatch would drain an empty pool and exit immediately.
            children_path = f"/proc/{proc.pid}/task/{proc.pid}/children"
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    with open(children_path) as fh:
                        children = fh.read().split()
                    hung = any(
                        "sleep" in open(f"/proc/{c}/wchan").read()
                        for c in children
                    )
                except OSError:  # pragma: no cover - child exited mid-scan
                    hung = False
                if hung:
                    break
                assert proc.poll() is None
                time.sleep(0.02)
            else:  # pragma: no cover - workers never hung
                pytest.fail("pool workers never reached the injected hang")
            proc.send_signal(signal.SIGINT)
            time.sleep(1.0)  # stage one: draining (hung, would take 60s)
            assert proc.poll() is None
            t0 = time.monotonic()
            proc.send_signal(signal.SIGINT)
            stdout, stderr = proc.communicate(timeout=30)
            elapsed = time.monotonic() - t0
        finally:
            if proc.poll() is None:  # pragma: no cover - hung child
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, stderr
        assert elapsed < 20  # aborted, not drained through the 60s hang
        assert "interrupted" in stderr
        # Nothing was persisted: every spec was hung when the abort
        # landed, and the abort promises no further writes.
        assert not store.exists() or store.read_text() == ""
