"""Tests for type detection (Section 4.3.1) and Table 3 cost model."""

from repro.core import (
    PreambleTypeDetector,
    SoftwareTypeOracle,
    slicc_hardware_cost,
)
from repro.core.hw_cost import (
    PIF_STORAGE_BITS,
    mtq_bits,
    team_table_bits,
    thread_queue_bits,
)
from repro.params import ScalePreset, SliccParams
from repro.workloads import standard_trace


class TestSoftwareOracle:
    def test_returns_ground_truth(self):
        trace = standard_trace("tpcc-1", ScalePreset.SMOKE)
        oracle = SoftwareTypeOracle()
        for thread in trace.threads:
            assert oracle.type_of(thread) == thread.txn_type


class TestPreambleDetector:
    def test_hundred_percent_accuracy_on_tpcc(self):
        """The paper reports SLICC-Pp is 100% accurate after a few tens
        of instructions; the detector must achieve this on our traces."""
        trace = standard_trace("tpcc-1", ScalePreset.CI, n_threads=24)
        detector = PreambleTypeDetector()
        for thread in trace.threads:
            detector.type_of(thread)
        assert detector.accuracy() == 1.0

    def test_hundred_percent_accuracy_on_tpce(self):
        trace = standard_trace("tpce", ScalePreset.CI, n_threads=24)
        detector = PreambleTypeDetector()
        for thread in trace.threads:
            detector.type_of(thread)
        assert detector.accuracy() == 1.0

    def test_same_type_threads_cluster_together(self):
        trace = standard_trace("tpcc-1", ScalePreset.SMOKE)
        detector = PreambleTypeDetector()
        clusters = {}
        for thread in trace.threads:
            clusters.setdefault(thread.txn_type, set()).add(
                detector.type_of(thread)
            )
        for cluster_ids in clusters.values():
            assert len(cluster_ids) == 1

    def test_stable_cluster_ids(self):
        trace = standard_trace("tpcc-1", ScalePreset.SMOKE)
        detector = PreambleTypeDetector()
        first = detector.type_of(trace.threads[0])
        again = detector.type_of(trace.threads[0])
        assert first == again

    def test_empty_observation_accuracy_is_one(self):
        assert PreambleTypeDetector().accuracy() == 1.0


class TestTable3:
    """Exact reproduction of Table 3's storage accounting."""

    def test_mtq_60_bits(self):
        assert mtq_bits(n_cores=16, matched_t=4) == 60

    def test_thread_queue_1920_bits(self):
        assert thread_queue_bits() == 1920

    def test_team_table_3600_bits(self):
        assert team_table_bits() == 3600

    def test_cache_monitor_subtotal_2208_bits(self):
        cost = slicc_hardware_cost(SliccParams(), n_cores=16)
        assert cost.cache_monitor_bits == 2208

    def test_grand_total_7728_bits_966_bytes(self):
        cost = slicc_hardware_cost(SliccParams(), n_cores=16)
        assert cost.total_bits == 7728
        assert cost.total_bytes == 966

    def test_relative_to_pif_about_2_4_percent(self):
        cost = slicc_hardware_cost(SliccParams(), n_cores=16)
        assert 0.02 < cost.relative_to_pif < 0.03

    def test_oblivious_slicc_skips_team_table(self):
        cost = slicc_hardware_cost(
            SliccParams(), n_cores=16, with_team_table=False
        )
        assert cost.team_table_bits == 0
        assert cost.total_bits == 7728 - 3600

    def test_pif_storage_is_40kb(self):
        assert PIF_STORAGE_BITS == 40 * 1024 * 8
