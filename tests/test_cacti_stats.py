"""Tests for the latency model and cache statistics."""

import pytest

from repro.cache import CacheStats, latency_for_size


class TestLatencyModel:
    def test_anchor_is_three_cycles(self):
        assert latency_for_size(32 * 1024) == 3

    def test_monotone_in_size(self):
        sizes = [16, 32, 64, 128, 256, 512]
        lats = [latency_for_size(s * 1024) for s in sizes]
        assert lats == sorted(lats)

    def test_512k_slower_than_32k(self):
        assert latency_for_size(512 * 1024) > latency_for_size(32 * 1024)

    def test_minimum_two_cycles(self):
        assert latency_for_size(1024) >= 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            latency_for_size(0)


class TestCacheStats:
    def test_hits_derived(self):
        s = CacheStats(accesses=10, misses=3)
        assert s.hits == 7

    def test_miss_ratio(self):
        s = CacheStats(accesses=10, misses=3)
        assert s.miss_ratio == pytest.approx(0.3)

    def test_miss_ratio_empty(self):
        assert CacheStats().miss_ratio == 0.0

    def test_mpki(self):
        s = CacheStats(accesses=100, misses=5)
        assert s.mpki(instructions=1000) == pytest.approx(5.0)

    def test_mpki_zero_instructions(self):
        assert CacheStats(misses=5).mpki(0) == 0.0

    def test_reset(self):
        s = CacheStats(accesses=10, misses=3, evictions=2)
        s.reset()
        assert s.accesses == 0 and s.misses == 0 and s.evictions == 0

    def test_merged(self):
        a = CacheStats(accesses=10, misses=3)
        b = CacheStats(accesses=5, misses=1, invalidations=2)
        m = a.merged(b)
        assert m.accesses == 15 and m.misses == 4 and m.invalidations == 2
